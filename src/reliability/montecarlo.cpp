#include "reap/reliability/montecarlo.hpp"

#include "reap/common/assert.hpp"

namespace reap::reliability {

FaultInjector::FaultInjector(const ecc::Code& code, double p_rd,
                             std::uint64_t seed)
    : code_(code), p_rd_(p_rd), rng_(seed) {
  REAP_EXPECTS(p_rd >= 0.0 && p_rd < 1.0);
}

void FaultInjector::disturb_once(common::BitVec& codeword) {
  // Geometric skipping over the '1' positions: with small p, iterating all
  // ones per read would dominate runtime. Collect ones once per call; the
  // positions list is short-lived.
  const auto ones = codeword.one_positions();
  if (ones.empty() || p_rd_ == 0.0) return;
  std::uint64_t idx = rng_.geometric(p_rd_);
  while (idx < ones.size()) {
    codeword.reset(ones[idx]);  // 1 -> 0, unidirectional
    idx += 1 + rng_.geometric(p_rd_);
  }
}

InjectionOutcome FaultInjector::run_conventional(
    const common::BitVec& payload, std::uint64_t reads_between_checks,
    std::uint64_t trials) {
  REAP_EXPECTS(payload.size() == code_.data_bits());
  REAP_EXPECTS(reads_between_checks >= 1);
  InjectionOutcome out;
  out.trials = trials;
  const common::BitVec clean_cw = code_.encode(payload);

  for (std::uint64_t i = 0; i < trials; ++i) {
    common::BitVec cw = clean_cw;
    for (std::uint64_t r = 0; r < reads_between_checks; ++r) disturb_once(cw);
    const ecc::DecodeResult res = code_.decode(cw);
    switch (res.status) {
      case ecc::DecodeStatus::clean:
        if (res.data == payload)
          ++out.clean;
        else
          ++out.miscorrected;  // errors slipped through undetected
        break;
      case ecc::DecodeStatus::corrected:
        if (res.data == payload)
          ++out.corrected;
        else
          ++out.miscorrected;
        break;
      case ecc::DecodeStatus::detected_uncorrectable:
        ++out.detected;
        break;
    }
  }
  return out;
}

InjectionOutcome FaultInjector::run_reap(const common::BitVec& payload,
                                         std::uint64_t reads_between_checks,
                                         std::uint64_t trials) {
  REAP_EXPECTS(payload.size() == code_.data_bits());
  REAP_EXPECTS(reads_between_checks >= 1);
  InjectionOutcome out;
  out.trials = trials;
  const common::BitVec clean_cw = code_.encode(payload);

  for (std::uint64_t i = 0; i < trials; ++i) {
    common::BitVec cw = clean_cw;
    bool failed = false;
    bool ever_corrected = false;
    for (std::uint64_t r = 0; r < reads_between_checks && !failed; ++r) {
      disturb_once(cw);
      const ecc::DecodeResult res = code_.decode(cw);
      if (res.status == ecc::DecodeStatus::detected_uncorrectable) {
        ++out.detected;
        failed = true;
      } else if (res.data != payload) {
        ++out.miscorrected;
        failed = true;
      } else {
        if (res.status == ecc::DecodeStatus::corrected) ever_corrected = true;
        cw = res.codeword;  // scrub: corrected codeword rewritten
      }
    }
    if (!failed) {
      if (ever_corrected)
        ++out.corrected;
      else
        ++out.clean;
    }
  }
  return out;
}

}  // namespace reap::reliability

#include "reap/reliability/mttf.hpp"

#include <limits>

#include "reap/common/assert.hpp"

namespace reap::reliability {

MttfResult compute_mttf(double failure_prob_sum, double sim_seconds) {
  REAP_EXPECTS(failure_prob_sum >= 0.0);
  REAP_EXPECTS(sim_seconds > 0.0);
  MttfResult r;
  r.failure_prob_sum = failure_prob_sum;
  r.sim_seconds = sim_seconds;
  r.failure_rate_per_s = failure_prob_sum / sim_seconds;
  r.mttf_seconds = failure_prob_sum == 0.0
                       ? std::numeric_limits<double>::infinity()
                       : 1.0 / r.failure_rate_per_s;
  return r;
}

double mttf_ratio(const MttfResult& a, const MttfResult& b) {
  if (b.failure_prob_sum == 0.0 && a.failure_prob_sum == 0.0) return 1.0;
  if (b.failure_prob_sum == 0.0)
    return a.failure_prob_sum == 0.0
               ? 1.0
               : 0.0;  // b never fails, a does: ratio collapses to 0
  if (a.failure_prob_sum == 0.0)
    return std::numeric_limits<double>::infinity();
  return b.failure_rate_per_s / a.failure_rate_per_s;
}

}  // namespace reap::reliability

// Reliability explorer: interact with the paper's analytic model without
// running any simulation.
//
// Sweeps the three block-correctness formulas (Eqs. 2/3/6) over the
// device operating point and the accumulation count, and prints MTJ
// device sensitivity tables (Eq. 1).
//
//   ./reliability_explorer [--ones=100] [--t=1]
#include <cstdio>

#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/mtj/mtj_params.hpp"
#include "reap/mtj/read_disturb.hpp"
#include "reap/reliability/binomial.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t ones = args.get_u64("ones", 100);
  const unsigned t = static_cast<unsigned>(args.get_u64("t", 1));

  std::puts("=== MTJ device sensitivity (Eq. 1) ===");
  TextTable dev({"I_read/I_C0", "Delta=50", "Delta=60", "Delta=70"});
  for (const double ratio : {0.5, 0.6, 0.693, 0.8, 0.9}) {
    std::vector<std::string> row = {TextTable::fixed(ratio, 3)};
    for (const double delta : {50.0, 60.0, 70.0}) {
      auto p = mtj::with_read_ratio(ratio);
      p.delta = delta;
      row.push_back(TextTable::sci(mtj::read_disturb_probability(p)));
    }
    dev.add_row(row);
  }
  std::fputs(dev.render().c_str(), stdout);

  std::printf(
      "\n=== Block failure probability (n=%llu ones, t=%u) ===\n"
      "rows: P_RD; columns: N reads between checks\n",
      static_cast<unsigned long long>(ones), t);
  const std::vector<std::uint64_t> n_reads = {1, 10, 100, 1000, 10000};
  {
    std::vector<std::string> hdr = {"P_RD \\ N"};
    for (const auto n : n_reads) hdr.push_back(std::to_string(n));
    TextTable conv(hdr);
    TextTable reap(hdr);
    for (const double p : {1e-10, 1e-9, 1e-8, 1e-7, 1e-6}) {
      std::vector<std::string> crow = {TextTable::sci(p)};
      std::vector<std::string> rrow = {TextTable::sci(p)};
      for (const auto n : n_reads) {
        crow.push_back(TextTable::sci(
            reliability::p_uncorrectable_block_acc(ones, n, p, t)));
        rrow.push_back(TextTable::sci(
            reliability::p_uncorrectable_block_reap(ones, n, p, t)));
      }
      conv.add_row(crow);
      reap.add_row(rrow);
    }
    std::puts("\nconventional accumulation (Eq. 3):");
    std::fputs(conv.render().c_str(), stdout);
    std::puts("\nREAP per-read checking (Eq. 6):");
    std::fputs(reap.render().c_str(), stdout);
  }

  std::puts(
      "\nNote the structure: Eq. (3) grows ~quadratically in N (for t=1)\n"
      "while Eq. (6) grows only linearly -- the gap is the REAP gain, and\n"
      "it widens without bound as reads accumulate.");
  return 0;
}

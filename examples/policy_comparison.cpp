// Policy comparison: the full read-path design space on one workload,
// including the baselines the paper argues against (serial access, restore
// after read) -- a deeper dive than quickstart.
//
//   ./policy_comparison [--workload=h264ref] [--instructions=1000000]
#include <cstdio>

#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string name = args.get_string("workload", "h264ref");
  const std::uint64_t instructions = args.get_u64("instructions", 1'000'000);

  const auto profile = trace::spec2006_profile(name);
  if (!profile) {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    return 1;
  }

  std::printf("read-path policy comparison on %s\n\n", name.c_str());

  core::ExperimentConfig cfg;
  cfg.workload = *profile;
  cfg.instructions = instructions;
  cfg.warmup_instructions = instructions / 10;

  TextTable t({"policy", "fail-prob sum", "MTTF (s)", "dyn energy (uJ)",
               "IPC", "L2 hit cycles", "ECC decodes", "data writes"});
  for (const auto kind : core::all_policies()) {
    cfg.policy = kind;
    const auto r = core::run_experiment(cfg);
    t.add_row({core::to_string(kind), TextTable::sci(r.mttf.failure_prob_sum),
               TextTable::sci(r.mttf.mttf_seconds),
               TextTable::fixed(r.energy.dynamic_total_j() * 1e6, 3),
               TextTable::fixed(r.ipc, 3), std::to_string(r.l2_hit_cycles),
               std::to_string(r.events.ecc_decodes),
               std::to_string(r.events.way_data_writes)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::puts(
      "\nhow to read this:\n"
      "  conventional: fast but accumulates disturbance (high fail sum)\n"
      "  reap:         same speed, accumulation gone, tiny decode premium\n"
      "  serial:       reliable but pays the tag+data serialization latency\n"
      "  restore:      reliable but every read triggers k restore writes\n"
      "                (watch the data-writes and energy columns)\n"
      "  scrub:        conventional + periodic set scrubbing -- an\n"
      "                intermediate point on the reliability/energy curve");
  return 0;
}

// Example: drive the campaign engine from code.
//
// Expands a small {workload x policy x ecc} grid, runs it on all cores,
// streams rows to CSV, and prints the aggregate report. Equivalent to:
//
//   reap_campaign --workloads=mcf,h264ref,lbm
//                 --policies=conventional,reap --ecc=1,2 --seeds=0,1
//                 --instructions=200000 --csv=sweep.csv
#include <cstdio>

#include "reap/campaign/campaign.hpp"

using namespace reap;

int main() {
  campaign::CampaignSpec spec;
  spec.name = "example-sweep";
  spec.workloads = {"mcf", "h264ref", "lbm"};
  spec.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap};
  spec.ecc_ts = {1, 2};
  spec.seeds = {0, 1};
  spec.base.instructions = 200'000;
  spec.base.warmup_instructions = 20'000;

  const auto points = campaign::expand(spec);
  std::printf("running %zu experiments...\n", points.size());

  campaign::RunnerOptions opts;
  campaign::ProgressReporter progress;
  opts.on_progress = [&progress](std::size_t d, std::size_t t) {
    progress(d, t);
  };
  const auto results = campaign::CampaignRunner(opts).run(points);

  campaign::CsvResultSink csv("sweep.csv");
  if (csv.ok()) campaign::emit_all(points, results, csv);

  const auto agg = campaign::aggregate(
      spec, points, results, core::PolicyKind::conventional_parallel);
  if (agg) std::printf("\n%s", agg->render().c_str());
  std::puts("\nwrote sweep.csv");
  return 0;
}

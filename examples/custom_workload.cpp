// Custom workload: build a WorkloadProfile from scratch instead of using
// the bundled SPEC-style ones -- the API a user reaches for to model their
// own application's locality.
//
// The example models a database-like mix: a hot index (zipf), a large scan
// (stream), and pointer-heavy row lookups (chase), with CLI knobs.
//
//   ./custom_workload [--hot_kb=256] [--scan_mb=8] [--zipf=1.1]
//                     [--stores=0.15] [--instructions=1000000]
#include <cstdio>

#include "reap/common/cli.hpp"
#include "reap/core/experiment.hpp"

using namespace reap;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t hot_kb = args.get_u64("hot_kb", 256);
  const std::uint64_t scan_mb = args.get_u64("scan_mb", 8);
  const double zipf_s = args.get_double("zipf", 1.1);
  const double stores = args.get_double("stores", 0.15);
  const std::uint64_t instructions = args.get_u64("instructions", 1'000'000);

  trace::WorkloadProfile p;
  p.name = "custom-db";
  p.loads_per_inst = 0.30;
  p.stores_per_inst = stores;
  p.code_bytes = 256 * 1024;
  p.jump_prob = 0.03;
  p.values = {.mean_density = 0.38, .stddev_density = 0.1};
  p.seed = 0xDB;

  trace::PatternSpec hot;
  hot.kind = trace::PatternSpec::Kind::zipf;
  hot.weight = 0.5;
  hot.region_bytes = hot_kb * 1024;
  hot.zipf_s = zipf_s;

  trace::PatternSpec scan;
  scan.kind = trace::PatternSpec::Kind::stream;
  scan.weight = 0.3;
  scan.region_bytes = scan_mb * 1024 * 1024;
  scan.stride_bytes = 64;

  trace::PatternSpec rows;
  rows.kind = trace::PatternSpec::Kind::chase;
  rows.weight = 0.2;
  rows.region_bytes = 4 * 1024 * 1024;

  p.patterns = {hot, scan, rows};

  core::ExperimentConfig cfg;
  cfg.workload = p;
  cfg.instructions = instructions;
  cfg.warmup_instructions = instructions / 10;

  const auto cmp = core::compare_policies(
      cfg, core::PolicyKind::conventional_parallel, core::PolicyKind::reap);

  std::printf(
      "custom workload: hot=%lluKB zipf(s=%.2f), scan=%lluMB, chase=4MB, "
      "stores/inst=%.2f\n",
      static_cast<unsigned long long>(hot_kb), zipf_s,
      static_cast<unsigned long long>(scan_mb), stores);
  std::printf("L2 read hit rate:  %.1f %%\n",
              100.0 * cmp.base.hier.l2.read_hit_rate());
  std::printf("max concealed:     %llu\n",
              static_cast<unsigned long long>(cmp.base.max_concealed));
  std::printf("REAP MTTF gain:    %.1fx\n", cmp.mttf_gain);
  std::printf("energy overhead:   %.2f %%\n", cmp.energy_overhead_pct);

  std::puts(
      "\ntry: larger --hot_kb concentrates more long-lived lines in L2\n"
      "(bigger accumulation, bigger REAP gain); a bigger --scan_mb thrashes\n"
      "L2 and shrinks the gain toward the mcf regime.");
  return 0;
}

// Quickstart: the smallest complete use of the library.
//
// Builds the paper's Table I system, runs one workload under the
// conventional parallel cache and under REAP-cache, and prints the headline
// comparison (MTTF gain, energy overhead, performance).
//
//   ./quickstart [--workload=perlbench] [--instructions=1000000]
#include <cstdio>

#include "reap/common/cli.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string name = args.get_string("workload", "perlbench");
  const std::uint64_t instructions = args.get_u64("instructions", 1'000'000);

  // 1. Pick a workload profile (a synthetic stand-in for SPEC CPU2006).
  const auto profile = trace::spec2006_profile(name);
  if (!profile) {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    return 1;
  }

  // 2. Configure the experiment. Defaults reproduce the paper's setup:
  //    32KB 4-way SRAM L1s, 1MB 8-way STT-MRAM L2, SEC-DED per 512-bit
  //    line, MTJ tuned to P_RD ~ 1e-8.
  core::ExperimentConfig cfg;
  cfg.workload = *profile;
  cfg.instructions = instructions;
  cfg.warmup_instructions = instructions / 10;

  // 3. Run both read-path policies on the identical trace.
  const auto cmp = core::compare_policies(
      cfg, core::PolicyKind::conventional_parallel, core::PolicyKind::reap);

  // 4. Report.
  std::printf("workload:            %s (%llu instructions)\n", name.c_str(),
              static_cast<unsigned long long>(instructions));
  std::printf("L2 read hit rate:    %.1f %%\n",
              100.0 * cmp.base.hier.l2.read_hit_rate());
  std::printf("max concealed reads: %llu\n",
              static_cast<unsigned long long>(cmp.base.max_concealed));
  std::printf("conventional MTTF:   %.3e s\n", cmp.base.mttf.mttf_seconds);
  std::printf("REAP MTTF:           %.3e s\n", cmp.other.mttf.mttf_seconds);
  std::printf("MTTF improvement:    %.1fx  (paper average: 171x)\n",
              cmp.mttf_gain);
  std::printf("energy overhead:     %.2f %% (paper average: 2.7%%)\n",
              cmp.energy_overhead_pct);
  std::printf("performance:         %.2f %% of conventional IPC\n",
              100.0 * cmp.speedup);
  return 0;
}

// Trace tooling: generate a synthetic trace to a file, read it back, and
// replay it through the hierarchy -- the workflow for users who want to
// bring their own (e.g. gem5-captured) traces instead of the built-in
// generators.
//
//   ./trace_tools [--workload=gcc] [--ops=200000] [--file=/tmp/reap.trace]
//                 [--format=text|binary]
#include <cstdio>
#include <memory>

#include "reap/common/cli.hpp"
#include "reap/core/read_path.hpp"
#include "reap/reliability/binomial.hpp"
#include "reap/reliability/ledger.hpp"
#include "reap/sim/cpu.hpp"
#include "reap/trace/spec2006.hpp"
#include "reap/trace/trace_io.hpp"

using namespace reap;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string name = args.get_string("workload", "gcc");
  const std::uint64_t ops = args.get_u64("ops", 200'000);
  const std::string path = args.get_string("file", "/tmp/reap_example.trace");
  const std::string format = args.get_string("format", "binary");

  const auto profile = trace::spec2006_profile(name);
  if (!profile) {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    return 1;
  }

  // 1. Generate and persist a trace.
  trace::WorkloadTraceSource gen(*profile);
  const bool ok = format == "text" ? trace::write_text_trace(path, gen, ops)
                                   : trace::write_binary_trace(path, gen, ops);
  if (!ok) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %llu ops of '%s' to %s (%s format)\n",
              static_cast<unsigned long long>(ops), name.c_str(), path.c_str(),
              format.c_str());

  // 2. Read it back and replay it through the Table I hierarchy with the
  //    conventional policy attached, collecting concealed-read stats.
  std::unique_ptr<trace::TraceSource> reader;
  if (format == "text")
    reader = std::make_unique<trace::TextTraceReader>(path);
  else
    reader = std::make_unique<trace::BinaryTraceReader>(path);

  reliability::UncorrectableModel model(1e-8, 1, 512);
  reliability::FailureLedger ledger;
  core::PolicyContext ctx;
  ctx.model = &model;
  ctx.ledger = &ledger;
  ctx.ways = 8;
  const auto policy =
      core::ReadPathPolicy::make(core::PolicyKind::conventional_parallel, ctx);

  sim::MemoryHierarchy hier(sim::HierarchyConfig{});
  hier.set_l2_hooks(policy.get());
  sim::TraceCpu cpu(*reader, hier);
  cpu.run(ops);  // replays until the trace ends

  const auto s = hier.stats();
  std::printf(
      "\nreplay: %llu instructions, %llu cycles (IPC %.3f)\n"
      "L1D: %.1f%% read hit rate | L2: %.1f%% read hit rate, %llu lookups\n"
      "concealed reads: max %llu, failure-prob sum %.3e over %llu checks\n",
      static_cast<unsigned long long>(cpu.instructions()),
      static_cast<unsigned long long>(cpu.cycles()), cpu.ipc(),
      100.0 * s.l1d.read_hit_rate(), 100.0 * s.l2.read_hit_rate(),
      static_cast<unsigned long long>(s.l2.read_lookups),
      static_cast<unsigned long long>(ledger.max_concealed()),
      ledger.total_failure_prob(),
      static_cast<unsigned long long>(ledger.checks()));

  std::puts("\nconcealed-read histogram (counts, failure weight):");
  std::fputs(ledger.histogram().render("count", "failure").c_str(), stdout);
  return 0;
}

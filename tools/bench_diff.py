#!/usr/bin/env python3
"""Compare two google-benchmark JSON files (e.g. BENCH_e2e.json artifacts
from two commits) and print the per-benchmark throughput delta.

Usage:
    tools/bench_diff.py OLD.json NEW.json [--threshold PCT]

Matches benchmarks by name. For each pair the primary metric is
items_per_second (simulated instructions/sec for bench_e2e); benchmarks
without it fall back to real_time (lower is better). Exits 1 when any
matched benchmark regressed by more than --threshold percent (default 10),
so CI can gate on it.

A missing or unreadable baseline is not a regression: the first run of a
new benchmark job has nothing to compare against, so it prints a notice
and exits 0. Pass --require-baseline to turn that case into a hard
failure (exit 2) once a baseline is expected to exist.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def metric(bench):
    """(value, higher_is_better) for one benchmark entry."""
    if "items_per_second" in bench:
        return bench["items_per_second"], True
    return bench["real_time"], False


def fmt_rate(value):
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if value >= scale:
            return f"{value / scale:.2f}{unit}/s"
    return f"{value:.1f}/s"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old", help="baseline benchmark JSON")
    ap.add_argument("new", help="candidate benchmark JSON")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="fail if any benchmark regresses more than this "
                         "percent (default 10)")
    ap.add_argument("--require-baseline", action="store_true",
                    help="treat a missing/unreadable baseline as a failure "
                         "(exit 2) instead of skipping the comparison")
    args = ap.parse_args()

    try:
        old = load(args.old)
    except (OSError, json.JSONDecodeError) as e:
        kind = "unreadable" if os.path.exists(args.old) else "missing"
        print(f"baseline {args.old} is {kind} ({e})", file=sys.stderr)
        if args.require_baseline:
            return 2
        print("no baseline to compare against; skipping (pass "
              "--require-baseline to fail instead)")
        return 0
    try:
        new = load(args.new)
    except (OSError, json.JSONDecodeError) as e:
        # The candidate is this run's own output: its absence means the
        # bench job itself broke, which must never be reported as OK.
        print(f"cannot read candidate {args.new}: {e}", file=sys.stderr)
        return 2
    names = [n for n in old if n in new]
    if not names:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 2

    width = max(len(n) for n in names)
    regressions = []
    print(f"{'benchmark':<{width}}  {'old':>12}  {'new':>12}  {'delta':>8}")
    for name in names:
        old_v, higher_better = metric(old[name])
        new_v, _ = metric(new[name])
        if old_v == 0:
            continue
        ratio = new_v / old_v if higher_better else old_v / new_v
        delta_pct = (ratio - 1.0) * 100.0
        if "items_per_second" in old[name]:
            cells = f"{fmt_rate(old_v):>12}  {fmt_rate(new_v):>12}"
        else:
            cells = f"{old_v:>10.1f}ns  {new_v:>10.1f}ns"
        print(f"{name:<{width}}  {cells}  {delta_pct:>+7.1f}%")
        if delta_pct < -args.threshold:
            regressions.append((name, delta_pct))

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"\nonly in {args.old}: {', '.join(only_old)}")
    if only_new:
        print(f"only in {args.new}: {', '.join(only_new)}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare two google-benchmark JSON files (e.g. BENCH_e2e.json artifacts
from two commits) and print the per-benchmark throughput delta -- or gate
series ratios within a single file.

Diff mode:
    tools/bench_diff.py OLD.json NEW.json [--threshold PCT]

Matches benchmarks by name. For each pair the primary metric is
items_per_second (simulated instructions/sec for bench_e2e); benchmarks
without it fall back to real_time (lower is better). Exits 1 when any
matched benchmark regressed by more than --threshold percent (default 10),
so CI can gate on it.

A missing or unreadable baseline is not a regression: the first run of a
new benchmark job has nothing to compare against, so it prints a notice
and exits 0. Pass --require-baseline to turn that case into a hard
failure (exit 2) once a baseline is expected to exist.

Gate mode:
    tools/bench_diff.py BENCH.json --gate replay/static=1.3 \\
                                   --gate simd/static=1.0

Each --gate NUM/DEN=MIN pairs the E2E/<NUM>/<policy> and E2E/<DEN>/<policy>
benchmarks of one file by policy, computes the per-policy
items_per_second ratio, and fails (exit 1) when the geomean across
policies falls below MIN. The geomean -- not the per-policy minimum -- is
gated because single-policy ratios on shared CI runners are noisy; the
floors are held down by bench/bench_e2e.cpp's series semantics and the
measured ratios recorded in docs/performance.md.
"""

import argparse
import json
import math
import os
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def metric(bench):
    """(value, higher_is_better) for one benchmark entry."""
    if "items_per_second" in bench:
        return bench["items_per_second"], True
    return bench["real_time"], False


def fmt_rate(value):
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if value >= scale:
            return f"{value / scale:.2f}{unit}/s"
    return f"{value:.1f}/s"


def parse_gate(spec):
    """'replay/static=1.3' -> ('replay', 'static', 1.3)."""
    pair, eq, floor = spec.partition("=")
    num, slash, den = pair.partition("/")
    if not (eq and slash and num and den):
        raise argparse.ArgumentTypeError(
            f"gate must look like NUM/DEN=MIN, got {spec!r}")
    try:
        return num, den, float(floor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"gate floor must be a number, got {floor!r}")


def run_gates(path, gates):
    """Gate mode: per-policy series ratios within one benchmark file."""
    try:
        benches = load(path)
    except (OSError, json.JSONDecodeError) as e:
        # Gate mode always reads this run's own output; absence means the
        # bench run itself broke.
        print(f"cannot read {path}: {e}", file=sys.stderr)
        return 2

    # E2E/<series>/<policy> -> series[policy] = items_per_second.
    series = {}
    for name, b in benches.items():
        parts = name.split("/")
        if len(parts) == 3 and parts[0] == "E2E" and "items_per_second" in b:
            series.setdefault(parts[1], {})[parts[2]] = b["items_per_second"]

    failures = []
    for num, den, floor in gates:
        for side in (num, den):
            if side not in series:
                print(f"gate {num}/{den}: no E2E/{side}/* benchmarks in "
                      f"{path} (have: {', '.join(sorted(series)) or 'none'})",
                      file=sys.stderr)
                return 2
        policies = sorted(set(series[num]) & set(series[den]))
        if not policies:
            print(f"gate {num}/{den}: the two series share no policies",
                  file=sys.stderr)
            return 2
        ratios = []
        print(f"gate {num}/{den} (floor {floor:g}):")
        for p in policies:
            r = series[num][p] / series[den][p]
            ratios.append(r)
            print(f"  {p:<16} {fmt_rate(series[num][p]):>12} /"
                  f" {fmt_rate(series[den][p]):>12} = {r:.3f}x")
        g = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        ok = g >= floor
        print(f"  geomean {g:.3f}x -> {'OK' if ok else 'FAIL'}")
        if not ok:
            failures.append((num, den, g, floor))

    if failures:
        print(f"\nFAIL: {len(failures)} gate(s) below floor:",
              file=sys.stderr)
        for num, den, g, floor in failures:
            print(f"  {num}/{den}: geomean {g:.3f}x < {floor:g}x",
                  file=sys.stderr)
        return 1
    print(f"\nOK: all {len(gates)} gate(s) at or above their floors")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old", help="baseline benchmark JSON (gate mode: the "
                                "only file)")
    ap.add_argument("new", nargs="?", help="candidate benchmark JSON "
                                           "(diff mode only)")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="fail if any benchmark regresses more than this "
                         "percent (default 10)")
    ap.add_argument("--require-baseline", action="store_true",
                    help="treat a missing/unreadable baseline as a failure "
                         "(exit 2) instead of skipping the comparison")
    ap.add_argument("--gate", action="append", type=parse_gate, default=[],
                    metavar="NUM/DEN=MIN",
                    help="gate mode: fail unless the geomean of per-policy "
                         "E2E/NUM/<p> : E2E/DEN/<p> throughput ratios is at "
                         "least MIN (repeatable)")
    args = ap.parse_args()

    if args.gate:
        if args.new is not None:
            ap.error("gate mode takes exactly one benchmark JSON")
        return run_gates(args.old, args.gate)
    if args.new is None:
        ap.error("diff mode needs OLD.json and NEW.json")

    try:
        old = load(args.old)
    except (OSError, json.JSONDecodeError) as e:
        kind = "unreadable" if os.path.exists(args.old) else "missing"
        print(f"baseline {args.old} is {kind} ({e})", file=sys.stderr)
        if args.require_baseline:
            return 2
        print("no baseline to compare against; skipping (pass "
              "--require-baseline to fail instead)")
        return 0
    try:
        new = load(args.new)
    except (OSError, json.JSONDecodeError) as e:
        # The candidate is this run's own output: its absence means the
        # bench job itself broke, which must never be reported as OK.
        print(f"cannot read candidate {args.new}: {e}", file=sys.stderr)
        return 2
    names = [n for n in old if n in new]
    if not names:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 2

    width = max(len(n) for n in names)
    regressions = []
    print(f"{'benchmark':<{width}}  {'old':>12}  {'new':>12}  {'delta':>8}")
    for name in names:
        old_v, higher_better = metric(old[name])
        new_v, _ = metric(new[name])
        if old_v == 0:
            continue
        ratio = new_v / old_v if higher_better else old_v / new_v
        delta_pct = (ratio - 1.0) * 100.0
        if "items_per_second" in old[name]:
            cells = f"{fmt_rate(old_v):>12}  {fmt_rate(new_v):>12}"
        else:
            cells = f"{old_v:>10.1f}ns  {new_v:>10.1f}ns"
        print(f"{name:<{width}}  {cells}  {delta_pct:>+7.1f}%")
        if delta_pct < -args.threshold:
            regressions.append((name, delta_pct))

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"\nonly in {args.old}: {', '.join(only_old)}")
    if only_new:
        print(f"only in {args.new}: {', '.join(only_new)}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/bin/sh
# Stand-in for ssh in tests and CI: ignores the host argument and runs
# the command string locally, joining the remaining argv with spaces the
# way ssh hands them to the remote shell. Lets the multi-host smoke test
# exercise SshTransport -- framing, handshake, host loss -- without a
# real sshd anywhere.
#
# Usage (as SshTransport invokes ssh): fake_ssh.sh HOST COMMAND...
host=$1
shift
exec sh -c "$*"

// Associativity ablation: concealed reads scale with k-1, so both the
// conventional cache's accumulation and REAP's decode-energy premium grow
// with associativity. Sweeps k at fixed capacity.
//
// Driven by the campaign engine: one {conventional, reap} campaign per
// associativity (ways is hierarchy geometry, not a grid axis); all
// campaigns share the campaign seed so each sweep point replays the
// identical trace for both policies.
//
// Flags: --instructions=N --warmup=N --workload=name --threads=N
#include <cstdio>

#include "reap/campaign/campaign.hpp"
#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string workload = args.get_string("workload", "perlbench");
  if (!trace::spec2006_profile(workload)) {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }

  campaign::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  campaign::CampaignRunner runner(opts);

  std::puts("=== Ablation: L2 associativity sweep (1MB capacity) ===");
  std::printf("workload: %s\n", workload.c_str());
  TextTable t({"ways", "L2 hit rate", "max concealed", "MTTF gain (x)",
               "energy overhead (%)"});
  for (const std::size_t ways : {2u, 4u, 8u, 16u}) {
    campaign::CampaignSpec spec;
    spec.name = "ablation-assoc-" + std::to_string(ways);
    spec.workloads = {workload};
    spec.policies = {core::PolicyKind::conventional_parallel,
                     core::PolicyKind::reap};
    spec.base.instructions = args.get_u64("instructions", 1'000'000);
    spec.base.warmup_instructions = args.get_u64("warmup", 100'000);
    spec.base.hierarchy.l2.ways = ways;

    const auto points = campaign::expand(spec);
    const auto results = runner.run(points);
    const auto agg = campaign::aggregate(
        spec, points, results, core::PolicyKind::conventional_parallel);
    const auto& c = agg->comparisons[0];  // REAP vs conventional
    const auto& base = results[c.baseline_index];
    t.add_row({std::to_string(ways),
               TextTable::fixed(100.0 * base.hier.l2.read_hit_rate(), 1) +
                   " %",
               std::to_string(base.max_concealed),
               TextTable::fixed(c.mttf_gain, 1),
               TextTable::fixed(c.energy_overhead_pct, 2)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts(
      "\nexpected shape: higher associativity -> more concealed reads per\n"
      "access -> larger conventional accumulation (bigger REAP gain) and a\n"
      "larger REAP decode premium (k decoders vs 1).");
  return 0;
}

// Associativity ablation: concealed reads scale with k-1, so both the
// conventional cache's accumulation and REAP's decode-energy premium grow
// with associativity. Sweeps k at fixed capacity.
//
// Flags: --instructions=N --warmup=N --workload=name
#include <cstdio>

#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t instructions = args.get_u64("instructions", 1'000'000);
  const std::uint64_t warmup = args.get_u64("warmup", 100'000);
  const std::string workload = args.get_string("workload", "perlbench");

  const auto profile = trace::spec2006_profile(workload);
  if (!profile) {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }

  std::puts("=== Ablation: L2 associativity sweep (1MB capacity) ===");
  std::printf("workload: %s\n", workload.c_str());
  TextTable t({"ways", "L2 hit rate", "max concealed", "MTTF gain (x)",
               "energy overhead (%)"});
  for (const std::size_t ways : {2u, 4u, 8u, 16u}) {
    core::ExperimentConfig cfg;
    cfg.workload = *profile;
    cfg.instructions = instructions;
    cfg.warmup_instructions = warmup;
    cfg.hierarchy.l2.ways = ways;
    const auto c = core::compare_policies(
        cfg, core::PolicyKind::conventional_parallel, core::PolicyKind::reap);
    t.add_row({std::to_string(ways),
               TextTable::fixed(100.0 * c.base.hier.l2.read_hit_rate(), 1) +
                   " %",
               std::to_string(c.base.max_concealed),
               TextTable::fixed(c.mttf_gain, 1),
               TextTable::fixed(c.energy_overhead_pct, 2)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts(
      "\nexpected shape: higher associativity -> more concealed reads per\n"
      "access -> larger conventional accumulation (bigger REAP gain) and a\n"
      "larger REAP decode premium (k decoders vs 1).");
  return 0;
}

// Fig. 5 reproduction: MTTF of REAP-cache normalized to the conventional
// cache, for every bundled SPEC CPU2006-style workload.
//
// Paper numbers to compare shapes against: average 171x, worst case 7.9x
// (mcf), above 1000x for namd / dealII / h264ref.
//
// Driven by the campaign engine: the {workload x policy} grid is expanded
// into one deterministic spec and sharded across cores; output is identical
// to a serial run.
//
// Flags: --instructions=N --warmup=N --csv=path --threads=N
#include <cstdio>
#include <string>
#include <vector>

#include "reap/campaign/campaign.hpp"
#include "reap/common/cli.hpp"
#include "reap/common/csv.hpp"
#include "reap/common/stats.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);

  campaign::CampaignSpec spec;
  spec.name = "fig5-mttf";
  spec.workloads = trace::spec2006_names();
  spec.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap};
  spec.base.instructions = args.get_u64("instructions", 3'000'000);
  spec.base.warmup_instructions = args.get_u64("warmup", 200'000);
  const std::string csv_path = args.get_string("csv", "");

  std::puts("=== Fig. 5: MTTF of REAP-cache normalized to conventional ===");
  std::printf("%llu instructions per run (+%llu warmup), P_RD ~ 1e-8\n\n",
              static_cast<unsigned long long>(spec.base.instructions),
              static_cast<unsigned long long>(spec.base.warmup_instructions));

  const auto points = campaign::expand(spec);
  campaign::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  campaign::ProgressReporter progress;
  opts.on_progress = [&progress](std::size_t d, std::size_t t) {
    progress(d, t);
  };
  const auto results = campaign::CampaignRunner(opts).run(points);

  const auto agg = campaign::aggregate(
      spec, points, results, core::PolicyKind::conventional_parallel);

  TextTable t({"workload", "MTTF gain (x)", "max concealed", "L2 hit rate",
               "conv fail-sum", "reap fail-sum"});
  std::vector<double> gains;
  std::vector<std::pair<std::string, double>> by_name;

  // One comparison per workload (single ecc/ratio/seed point on each).
  for (const auto& c : agg->comparisons) {
    const auto& base = results[c.baseline_index];
    const auto& reap_r = results[c.index];
    gains.push_back(c.mttf_gain);
    by_name.emplace_back(base.workload, c.mttf_gain);
    t.add_row({base.workload, TextTable::fixed(c.mttf_gain, 1),
               std::to_string(base.max_concealed),
               TextTable::fixed(100.0 * base.hier.l2.read_hit_rate(), 1) +
                   " %",
               TextTable::sci(base.mttf.failure_prob_sum),
               TextTable::sci(reap_r.mttf.failure_prob_sum)});
  }
  std::fputs(t.render().c_str(), stdout);

  double worst = gains[0], best = gains[0];
  std::string worst_name = by_name[0].first, best_name = by_name[0].first;
  for (const auto& [name, g] : by_name) {
    if (g < worst) {
      worst = g;
      worst_name = name;
    }
    if (g > best) {
      best = g;
      best_name = name;
    }
  }
  std::printf(
      "\naverage MTTF improvement: %.1fx (paper: 171x)\n"
      "geometric mean:            %.1fx\n"
      "worst case:                %.1fx in %s (paper: 7.9x in mcf)\n"
      "best case:                 %.1fx in %s (paper: >1000x in "
      "namd/dealII/h264ref)\n",
      common::arithmetic_mean(gains), common::geometric_mean(gains), worst,
      worst_name.c_str(), best, best_name.c_str());

  if (!csv_path.empty()) {
    common::CsvWriter csv(csv_path, {"workload", "mttf_gain"});
    for (const auto& [name, g] : by_name)
      csv.add_row({name, std::to_string(g)});
  }
  return 0;
}

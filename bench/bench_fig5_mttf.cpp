// Fig. 5 reproduction: MTTF of REAP-cache normalized to the conventional
// cache, for every bundled SPEC CPU2006-style workload.
//
// Paper numbers to compare shapes against: average 171x, worst case 7.9x
// (mcf), above 1000x for namd / dealII / h264ref.
//
// Flags: --instructions=N --warmup=N --csv=path
#include <cstdio>
#include <string>
#include <vector>

#include "reap/common/cli.hpp"
#include "reap/common/csv.hpp"
#include "reap/common/stats.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t instructions = args.get_u64("instructions", 3'000'000);
  const std::uint64_t warmup = args.get_u64("warmup", 200'000);
  const std::string csv_path = args.get_string("csv", "");

  std::puts("=== Fig. 5: MTTF of REAP-cache normalized to conventional ===");
  std::printf("%llu instructions per run (+%llu warmup), P_RD ~ 1e-8\n\n",
              static_cast<unsigned long long>(instructions),
              static_cast<unsigned long long>(warmup));

  TextTable t({"workload", "MTTF gain (x)", "max concealed", "L2 hit rate",
               "conv fail-sum", "reap fail-sum"});
  std::vector<double> gains;
  std::vector<std::pair<std::string, double>> by_name;

  for (const auto& profile : trace::spec2006_all()) {
    core::ExperimentConfig cfg;
    cfg.workload = profile;
    cfg.instructions = instructions;
    cfg.warmup_instructions = warmup;
    const auto c = core::compare_policies(
        cfg, core::PolicyKind::conventional_parallel, core::PolicyKind::reap);

    gains.push_back(c.mttf_gain);
    by_name.emplace_back(profile.name, c.mttf_gain);
    t.add_row({profile.name, TextTable::fixed(c.mttf_gain, 1),
               std::to_string(c.base.max_concealed),
               TextTable::fixed(100.0 * c.base.hier.l2.read_hit_rate(), 1) +
                   " %",
               TextTable::sci(c.base.mttf.failure_prob_sum),
               TextTable::sci(c.other.mttf.failure_prob_sum)});
  }
  std::fputs(t.render().c_str(), stdout);

  double worst = gains[0], best = gains[0];
  std::string worst_name = by_name[0].first, best_name = by_name[0].first;
  for (const auto& [name, g] : by_name) {
    if (g < worst) {
      worst = g;
      worst_name = name;
    }
    if (g > best) {
      best = g;
      best_name = name;
    }
  }
  std::printf(
      "\naverage MTTF improvement: %.1fx (paper: 171x)\n"
      "geometric mean:            %.1fx\n"
      "worst case:                %.1fx in %s (paper: 7.9x in mcf)\n"
      "best case:                 %.1fx in %s (paper: >1000x in "
      "namd/dealII/h264ref)\n",
      common::arithmetic_mean(gains), common::geometric_mean(gains), worst,
      worst_name.c_str(), best, best_name.c_str());

  if (!csv_path.empty()) {
    common::CsvWriter csv(csv_path, {"workload", "mttf_gain"});
    for (const auto& [name, g] : by_name)
      csv.add_row({name, std::to_string(g)});
  }
  return 0;
}

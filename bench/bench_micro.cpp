// Microbenchmarks (google-benchmark): throughput of the substrates the
// evaluation rests on -- ECC codecs, the reliability math, the cache
// simulator, and trace generation.
#include <benchmark/benchmark.h>

#include "reap/common/rng.hpp"
#include "reap/core/experiment.hpp"
#include "reap/ecc/bch.hpp"
#include "reap/ecc/hamming.hpp"
#include "reap/ecc/secded.hpp"
#include "reap/reliability/binomial.hpp"
#include "reap/sim/cpu.hpp"
#include "reap/trace/replay.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;

namespace {

common::BitVec random_data(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  common::BitVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.chance(0.5)) v.set(i);
  return v;
}

void BM_SecDedEncode512(benchmark::State& state) {
  ecc::SecDedCode code(512);
  const auto data = random_data(512, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(data));
  }
}
BENCHMARK(BM_SecDedEncode512);

void BM_SecDedDecodeClean512(benchmark::State& state) {
  ecc::SecDedCode code(512);
  const auto cw = code.encode(random_data(512, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_SecDedDecodeClean512);

void BM_SecDedDecodeCorrect512(benchmark::State& state) {
  ecc::SecDedCode code(512);
  auto cw = code.encode(random_data(512, 3));
  cw.flip(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_SecDedDecodeCorrect512);

void BM_BchDecodeDouble512(benchmark::State& state) {
  ecc::BchCode code(512, 2);
  auto cw = code.encode(random_data(512, 4));
  cw.flip(5);
  cw.flip(300);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_BchDecodeDouble512);

void BM_BinomialTailEq3(benchmark::State& state) {
  std::uint64_t n = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reliability::p_uncorrectable_block_acc(512, n, 1e-8));
    n = n == 100 ? 5000 : 100;
  }
}
BENCHMARK(BM_BinomialTailEq3);

void BM_UncorrectableModelCachedSingle(benchmark::State& state) {
  reliability::UncorrectableModel model(1e-8, 1, 512);
  std::uint64_t ones = 17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.single(ones));
    ones = (ones * 31 + 7) % 512;
  }
}
BENCHMARK(BM_UncorrectableModelCachedSingle);

void BM_TraceGeneration(benchmark::State& state) {
  auto profile = *trace::spec2006_profile("perlbench");
  trace::WorkloadTraceSource src(profile);
  trace::MemOp op;
  for (auto _ : state) {
    src.next(op);
    benchmark::DoNotOptimize(op);
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_TraceBatchGeneration(benchmark::State& state) {
  // The batched pull the simulator's static path uses: one virtual call
  // per kBatchOps operations. items = ops, for comparison against the
  // per-op BM_TraceGeneration.
  auto profile = *trace::spec2006_profile("perlbench");
  trace::WorkloadTraceSource src(profile);
  std::vector<trace::MemOp> buf(sim::TraceCpu::kBatchOps);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    ops += src.next_batch({buf.data(), buf.size()});
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_TraceBatchGeneration);

void BM_TraceReplayBatch(benchmark::State& state) {
  // ReplayTraceSource::next_batch: the bounds-checked unpack of a
  // materialized arena — the stream cost of every trace-cache hit.
  // Compare against BM_TraceBatchGeneration for the per-op RNG work a
  // replayed grid point skips.
  auto profile = *trace::spec2006_profile("perlbench");
  trace::WorkloadTraceSource gen(profile);
  const auto trace = trace::MaterializedTrace::materialize(gen, 100'000);
  trace::ReplayTraceSource src(trace);
  std::vector<trace::MemOp> buf(sim::TraceCpu::kBatchOps);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    std::size_t n = src.next_batch({buf.data(), buf.size()});
    if (n == 0) {
      src.reset();
      n = src.next_batch({buf.data(), buf.size()});
    }
    ops += n;
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_TraceReplayBatch);

void BM_CacheLookupHit(benchmark::State& state) {
  // SoA tag-column scan: L1-shaped cache, all reads hit, no hooks.
  sim::SetAssocCache cache(
      {.name = "L1", .capacity_bytes = 32 * 1024, .ways = 4,
       .block_bytes = 64});
  for (std::uint64_t a = 0; a < 32 * 1024; a += 64) cache.fill(a, false);
  sim::NullHooks hooks;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.read(addr, hooks));
    addr = (addr + 8 * 73) & (32 * 1024 - 1);  // walk the sets
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheLookupMissAndFill(benchmark::State& state) {
  // Thrash a small cache: every read misses and the block is refilled
  // (tag scan + victim scan + fill bookkeeping).
  sim::SetAssocCache cache(
      {.name = "L1", .capacity_bytes = 4 * 1024, .ways = 4,
       .block_bytes = 64});
  sim::NullHooks hooks;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    if (!cache.read(addr, hooks)) cache.fill(addr, false, hooks);
    addr += 4 * 1024;  // same set, always a new tag
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheLookupMissAndFill);

void BM_CacheFindWay(benchmark::State& state) {
  // The set-scan kernel in isolation, scalar reference vs the build's
  // find_way (vector when REAP_SIMD is on), across way counts. Columns
  // are padded/aligned exactly as SetAssocCache lays them out; half the
  // lookups hit, half miss, planted across all ways.
  const bool vector = state.range(0) != 0;
  const std::size_t ways = static_cast<std::size_t>(state.range(1));
  const std::size_t kSets = 512;
  const std::size_t stride = sim::simd::padded_ways(ways);
  sim::simd::AlignedVec<std::uint64_t> tags(kSets * stride);
  common::Rng rng(7);
  std::vector<std::uint64_t> keys(kSets);
  for (std::size_t s = 0; s < kSets; ++s) {
    for (std::size_t w = 0; w < ways; ++w)
      tags[s * stride + w] = ((s * ways + w + 1) << 1) | 1;
    // Even sets: probe a resident tag (hit); odd sets: an absent one.
    const std::size_t w = rng.next() % ways;
    keys[s] = (s % 2 == 0) ? tags[s * stride + w]
                           : ((std::uint64_t{kSets * 16 + s} << 1) | 1);
  }
  std::size_t s = 0;
  for (auto _ : state) {
    const std::uint64_t* col = tags.data() + s * stride;
    benchmark::DoNotOptimize(
        vector ? sim::simd::find_way(col, ways, keys[s])
               : sim::simd::find_way_scalar(col, ways, keys[s]));
    s = (s + 1) & (kSets - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(vector ? (sim::simd::kEnabled ? "vector" : "scalar-build")
                        : "scalar");
}
BENCHMARK(BM_CacheFindWay)
    ->ArgsProduct({{0, 1}, {2, 4, 8, 16}})
    ->ArgNames({"simd", "ways"});

void BM_BatchAddrDecode(benchmark::State& state) {
  // The batch pre-pass run_vectorized adds: kBatchOps addresses ->
  // (set, tagv) against the Table I L2 geometry. items = ops, so
  // items_per_second shows the per-op cost the pre-decode amortizes.
  auto profile = *trace::spec2006_profile("perlbench");
  trace::WorkloadTraceSource src(profile);
  std::vector<trace::MemOp> buf(sim::TraceCpu::kBatchOps);
  const std::size_t n = src.next_batch({buf.data(), buf.size()});
  std::vector<std::uint32_t> set(n);
  std::vector<std::uint64_t> tagv(n);
  sim::SetAssocCache l2(
      {.name = "L2", .capacity_bytes = 1024 * 1024, .ways = 8,
       .block_bytes = 64});
  std::uint64_t ops = 0;
  for (auto _ : state) {
    sim::simd::predecode(buf.data(), n, l2.offset_bits(), l2.index_bits(),
                         set.data(), tagv.data());
    benchmark::DoNotOptimize(set.data());
    benchmark::DoNotOptimize(tagv.data());
    ops += n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_BatchAddrDecode);

void BM_HierarchySimulation(benchmark::State& state) {
  // Steady-state instructions/second through the full hierarchy with the
  // REAP policy attached (the heaviest hook).
  auto profile = *trace::spec2006_profile("perlbench");
  trace::WorkloadTraceSource src(profile);
  sim::HierarchyConfig hcfg;
  sim::MemoryHierarchy hier(hcfg, 1);
  reliability::UncorrectableModel model(1e-8, 1, 512);
  reliability::FailureLedger ledger;
  core::PolicyContext ctx;
  ctx.model = &model;
  ctx.ledger = &ledger;
  ctx.ways = 8;
  const auto policy =
      core::ReadPathPolicy::make(core::PolicyKind::reap, ctx);
  hier.set_l2_hooks(policy.get());
  sim::TraceCpu cpu(src, hier);
  cpu.run(100'000);  // warm
  for (auto _ : state) {
    cpu.run(1'000);
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_HierarchySimulation);

void BM_FullExperimentSmall(benchmark::State& state) {
  auto profile = *trace::spec2006_profile("gcc");
  for (auto _ : state) {
    core::ExperimentConfig cfg;
    cfg.workload = profile;
    cfg.instructions = 50'000;
    cfg.warmup_instructions = 10'000;
    benchmark::DoNotOptimize(core::run_experiment(cfg));
  }
}
BENCHMARK(BM_FullExperimentSmall)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Fig. 6 reproduction: dynamic energy of the STT-MRAM L2 under REAP-cache,
// normalized to the conventional cache, per workload.
//
// Paper numbers to compare shapes against: +2.7% average, worst 6.5%
// (cactusADM), best 1.0% (xalancbmk); the overhead tracks the share of read
// accesses (k-1 extra ECC decodes per read) in total dynamic energy.
//
// Driven by the campaign engine (multi-threaded, deterministic).
//
// Flags: --instructions=N --warmup=N --csv=path --threads=N
#include <cstdio>
#include <string>
#include <vector>

#include "reap/campaign/campaign.hpp"
#include "reap/common/cli.hpp"
#include "reap/common/csv.hpp"
#include "reap/common/stats.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);

  campaign::CampaignSpec spec;
  spec.name = "fig6-energy";
  spec.workloads = trace::spec2006_names();
  spec.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap};
  spec.base.instructions = args.get_u64("instructions", 2'000'000);
  spec.base.warmup_instructions = args.get_u64("warmup", 200'000);
  const std::string csv_path = args.get_string("csv", "");

  std::puts(
      "=== Fig. 6: dynamic L2 energy, REAP normalized to conventional ===");
  std::printf("%llu instructions per run (+%llu warmup)\n\n",
              static_cast<unsigned long long>(spec.base.instructions),
              static_cast<unsigned long long>(spec.base.warmup_instructions));

  const auto points = campaign::expand(spec);
  campaign::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  campaign::ProgressReporter progress;
  opts.on_progress = [&progress](std::size_t d, std::size_t t) {
    progress(d, t);
  };
  const auto results = campaign::CampaignRunner(opts).run(points);

  const auto agg = campaign::aggregate(
      spec, points, results, core::PolicyKind::conventional_parallel);

  TextTable t({"workload", "REAP energy (%)", "overhead (%)",
               "L2 read share", "decode energy share"});
  std::vector<double> overheads;
  std::vector<std::pair<std::string, double>> by_name;

  for (const auto& c : agg->comparisons) {
    const auto& base = results[c.baseline_index];
    const auto& reap_r = results[c.index];
    const auto& s = base.hier.l2;
    const double read_share =
        s.read_lookups + s.write_lookups == 0
            ? 0.0
            : static_cast<double>(s.read_lookups) /
                  static_cast<double>(s.read_lookups + s.write_lookups);
    const double decode_share =
        reap_r.energy.ecc_decode_j / reap_r.energy.dynamic_total_j();

    overheads.push_back(c.energy_overhead_pct);
    by_name.emplace_back(base.workload, c.energy_overhead_pct);
    t.add_row({base.workload, TextTable::fixed(c.energy_ratio * 100.0, 1),
               TextTable::fixed(c.energy_overhead_pct, 2),
               TextTable::fixed(read_share * 100.0, 1) + " %",
               TextTable::fixed(decode_share * 100.0, 2) + " %"});
  }
  std::fputs(t.render().c_str(), stdout);

  double worst = overheads[0], best = overheads[0];
  std::string worst_name = by_name[0].first, best_name = by_name[0].first;
  for (const auto& [name, o] : by_name) {
    if (o > worst) {
      worst = o;
      worst_name = name;
    }
    if (o < best) {
      best = o;
      best_name = name;
    }
  }
  std::printf(
      "\naverage energy overhead: %.2f%% (paper: 2.7%%)\n"
      "worst case:              %.2f%% in %s (paper: 6.5%% in cactusADM)\n"
      "best case:               %.2f%% in %s (paper: 1.0%% in xalancbmk)\n",
      common::arithmetic_mean(overheads), worst, worst_name.c_str(), best,
      best_name.c_str());

  if (!csv_path.empty()) {
    common::CsvWriter csv(csv_path, {"workload", "energy_overhead_pct"});
    for (const auto& [name, o] : by_name)
      csv.add_row({name, std::to_string(o)});
  }
  return 0;
}

// Fig. 3 reproduction: for each of the four workloads the paper plots
// (perlbench, calculix, h264ref, dealII), run the conventional parallel
// cache and print, per concealed-read-count bin:
//   - normalized frequency (scaled so the zero-concealed-read bin = 100,
//     the paper's normalization), and
//   - the bin's contribution to the total cache failure rate.
// The paper's observation to reproduce: frequency falls with the concealed
// count while the failure contribution *rises* -- rare highly-accumulated
// reads dominate unreliability.
//
// Flags: --instructions=N --warmup=N --workloads=a,b,c --csv=prefix
#include <cstdio>
#include <string>
#include <vector>

#include "reap/common/cli.hpp"
#include "reap/common/csv.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t instructions = args.get_u64("instructions", 2'000'000);
  const std::uint64_t warmup = args.get_u64("warmup", 200'000);
  const std::string csv_prefix = args.get_string("csv", "");
  std::vector<std::string> workloads = trace::fig3_names();
  if (args.has("workloads"))
    workloads = split_csv(args.get_string("workloads", ""));

  std::puts(
      "=== Fig. 3: concealed-read frequency and failure-rate contribution "
      "===");
  std::printf("conventional parallel cache, %llu instructions per workload\n",
              static_cast<unsigned long long>(instructions));

  for (const auto& name : workloads) {
    const auto profile = trace::spec2006_profile(name);
    if (!profile) {
      std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
      return 1;
    }
    core::ExperimentConfig cfg;
    cfg.workload = *profile;
    cfg.policy = core::PolicyKind::conventional_parallel;
    cfg.instructions = instructions;
    cfg.warmup_instructions = warmup;
    const auto r = core::run_experiment(cfg);

    std::printf("\n--- %s ---\n", name.c_str());
    std::printf(
        "L2 read lookups: %llu, hit rate %.1f%%, max concealed reads: %llu, "
        "total failure prob: %.3e\n",
        static_cast<unsigned long long>(r.hier.l2.read_lookups),
        100.0 * r.hier.l2.read_hit_rate(),
        static_cast<unsigned long long>(r.max_concealed),
        r.mttf.failure_prob_sum);

    const auto bins = r.concealed.nonempty_bins();
    const double zero_count =
        bins.empty() || bins.front().lo != 0
            ? 1.0
            : static_cast<double>(bins.front().count) / 100.0;
    std::fputs(
        r.concealed.render("norm. frequency", "failure contrib",
                           zero_count)
            .c_str(),
        stdout);

    if (!csv_prefix.empty()) {
      common::CsvWriter csv(csv_prefix + "_" + name + ".csv",
                            {"concealed_lo", "concealed_hi", "count",
                             "norm_frequency", "failure_contribution"});
      for (const auto& b : bins) {
        csv.add_row({std::to_string(b.lo), std::to_string(b.hi),
                     std::to_string(b.count),
                     std::to_string(static_cast<double>(b.count) / zero_count),
                     std::to_string(b.weight)});
      }
    }
  }
  return 0;
}

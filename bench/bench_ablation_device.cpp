// Device-corner ablation: how the REAP gain moves with the MTJ operating
// point (read-current ratio -> P_RD) and with process variation.
//
// Expected shape: the MTTF *gain* of REAP is roughly P_RD-independent (it
// is set by the accumulation distribution N, not by p), while the absolute
// failure rates scale as p^2; variation inflates the effective P_RD via the
// weak-cell tail.
//
// Flags: --instructions=N --warmup=N --workload=name
#include <cstdio>

#include "reap/common/cli.hpp"
#include "reap/common/rng.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/mtj/read_disturb.hpp"
#include "reap/mtj/variation.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t instructions = args.get_u64("instructions", 1'000'000);
  const std::uint64_t warmup = args.get_u64("warmup", 100'000);
  const std::string workload = args.get_string("workload", "perlbench");

  const auto profile = trace::spec2006_profile(workload);
  if (!profile) {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }

  std::puts("=== Ablation: device operating point (I_read / I_C0 sweep) ===");
  std::printf("workload: %s\n", workload.c_str());
  TextTable t({"I_read/I_C0", "P_RD", "conv fail-sum", "reap fail-sum",
               "MTTF gain (x)"});
  for (const double ratio : {0.55, 0.60, 0.65, 0.693, 0.75, 0.80}) {
    core::ExperimentConfig cfg;
    cfg.workload = *profile;
    cfg.instructions = instructions;
    cfg.warmup_instructions = warmup;
    cfg.mtj = mtj::with_read_ratio(ratio);
    const auto c = core::compare_policies(
        cfg, core::PolicyKind::conventional_parallel, core::PolicyKind::reap);
    t.add_row({TextTable::fixed(ratio, 3), TextTable::sci(c.base.p_rd),
               TextTable::sci(c.base.mttf.failure_prob_sum),
               TextTable::sci(c.other.mttf.failure_prob_sum),
               TextTable::fixed(c.mttf_gain, 1)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::puts("\n=== Process variation: effective P_RD vs Delta sigma ===");
  TextTable v({"delta sigma", "mean P_RD", "P99.9 cell P_RD",
               "vs nominal (x)"});
  const double nominal = mtj::read_disturb_probability(mtj::paper_default());
  for (const double sigma : {0.0, 2.0, 4.0, 6.0, 8.0}) {
    mtj::VariationModel vm(mtj::paper_default(), {.delta_sigma = sigma});
    common::Rng rng(7);
    const double mean = vm.mean_p_rd(rng, 100000);
    const auto q = vm.p_rd_quantiles(rng, 100000, {0.999});
    v.add_row({TextTable::fixed(sigma, 1), TextTable::sci(mean),
               TextTable::sci(q[0]), TextTable::fixed(mean / nominal, 1)});
  }
  std::fputs(v.render().c_str(), stdout);
  return 0;
}

// Device-corner ablation: how the REAP gain moves with the MTJ operating
// point (read-current ratio -> P_RD) and with process variation.
//
// Expected shape: the MTTF *gain* of REAP is roughly P_RD-independent (it
// is set by the accumulation distribution N, not by p), while the absolute
// failure rates scale as p^2; variation inflates the effective P_RD via the
// weak-cell tail.
//
// Driven by the campaign engine: one {workload x policy x read_ratio} grid
// sharded across cores; REAP rows are paired against the conventional
// point that replayed the identical trace.
//
// Flags: --instructions=N --warmup=N --workload=name --threads=N
#include <cstdio>

#include "reap/campaign/campaign.hpp"
#include "reap/common/cli.hpp"
#include "reap/common/rng.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/mtj/read_disturb.hpp"
#include "reap/mtj/variation.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string workload = args.get_string("workload", "perlbench");

  campaign::CampaignSpec spec;
  spec.name = "ablation-device";
  spec.workloads = {workload};
  spec.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap};
  spec.read_ratios = {0.55, 0.60, 0.65, 0.693, 0.75, 0.80};
  spec.base.instructions = args.get_u64("instructions", 1'000'000);
  spec.base.warmup_instructions = args.get_u64("warmup", 100'000);

  std::puts("=== Ablation: device operating point (I_read / I_C0 sweep) ===");
  std::printf("workload: %s\n", workload.c_str());

  std::vector<campaign::CampaignPoint> points;
  try {
    points = campaign::expand(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  campaign::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  const auto results = campaign::CampaignRunner(opts).run(points);

  const auto agg = campaign::aggregate(
      spec, points, results, core::PolicyKind::conventional_parallel);

  TextTable t({"I_read/I_C0", "P_RD", "conv fail-sum", "reap fail-sum",
               "MTTF gain (x)"});
  // One comparison per operating point (REAP vs its paired conventional).
  for (const auto& c : agg->comparisons) {
    const auto& pt = points[c.index];
    const auto& reap_r = results[c.index];
    const auto& base = results[c.baseline_index];
    t.add_row({TextTable::fixed(spec.read_ratios[pt.ratio_i], 3),
               TextTable::sci(base.p_rd),
               TextTable::sci(base.mttf.failure_prob_sum),
               TextTable::sci(reap_r.mttf.failure_prob_sum),
               TextTable::fixed(c.mttf_gain, 1)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::puts("\n=== Process variation: effective P_RD vs Delta sigma ===");
  TextTable v({"delta sigma", "mean P_RD", "P99.9 cell P_RD",
               "vs nominal (x)"});
  const double nominal = mtj::read_disturb_probability(mtj::paper_default());
  for (const double sigma : {0.0, 2.0, 4.0, 6.0, 8.0}) {
    mtj::VariationModel vm(mtj::paper_default(), {.delta_sigma = sigma});
    common::Rng rng(7);
    const double mean = vm.mean_p_rd(rng, 100000);
    const auto q = vm.p_rd_quantiles(rng, 100000, {0.999});
    v.add_row({TextTable::fixed(sigma, 1), TextTable::sci(mean),
               TextTable::sci(q[0]), TextTable::fixed(mean / nominal, 1)});
  }
  std::fputs(v.render().c_str(), stdout);
  return 0;
}

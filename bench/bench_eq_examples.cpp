// Reproduces the paper's closed-form numerical examples:
//   Eq. (4): n=100 ones, P_RD=1e-8, no concealed reads  -> P_err ~ 5.0e-13
//   Eq. (5): 50 accumulated reads                        -> P_err ~ 1.3e-9
//   Sec. IV: REAP on the same line                       -> P_err ~ 2.6e-11
//            (50x better than conventional)
// and extends them with a sweep over N and over the ECC strength.
#include <cstdio>

#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/reliability/binomial.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const double p_rd = args.get_double("p_rd", 1e-8);
  const std::uint64_t n_ones = args.get_u64("ones", 100);

  std::puts("=== Paper numerical examples (Sec. III-B / IV) ===");
  const double eq4 = reliability::p_uncorrectable_block(n_ones, p_rd);
  const double eq5 = reliability::p_uncorrectable_block_acc(n_ones, 50, p_rd);
  const double reap50 =
      reliability::p_uncorrectable_block_reap(n_ones, 50, p_rd);
  std::printf(
      "n = %llu ones, P_RD-cell = %.1e\n"
      "  Eq.(4) single checked read        P_err = %.2e   (paper: 5.0e-13)\n"
      "  Eq.(5) 50 reads, one check        P_err = %.2e   (paper: 1.3e-9)\n"
      "  Eq.(6) REAP, 50 checked reads     P_err = %.2e   (paper: 2.6e-11)\n"
      "  conventional/REAP ratio           %.1fx          (paper: 50x)\n\n",
      static_cast<unsigned long long>(n_ones), p_rd, eq4, eq5, reap50,
      eq5 / reap50);

  std::puts("=== Accumulation sweep: failure probability vs N ===");
  TextTable t({"N (reads between checks)", "conventional Eq.(3)",
               "REAP Eq.(6)", "gain"});
  for (const std::uint64_t n_reads :
       {1ull, 2ull, 5ull, 10ull, 50ull, 100ull, 1000ull, 10000ull,
        100000ull}) {
    const double conv =
        reliability::p_uncorrectable_block_acc(n_ones, n_reads, p_rd);
    const double reap =
        reliability::p_uncorrectable_block_reap(n_ones, n_reads, p_rd);
    t.add_row({std::to_string(n_reads), TextTable::sci(conv),
               TextTable::sci(reap), TextTable::fixed(conv / reap, 1) + "x"});
  }
  std::fputs(t.render().c_str(), stdout);

  std::puts("\n=== ECC strength sweep at N = 50 (ablation) ===");
  TextTable e({"code capability t", "conventional", "REAP", "gain"});
  for (const unsigned t_cap : {1u, 2u, 3u}) {
    const double conv =
        reliability::p_uncorrectable_block_acc(n_ones, 50, p_rd, t_cap);
    const double reap =
        reliability::p_uncorrectable_block_reap(n_ones, 50, p_rd, t_cap);
    e.add_row({std::to_string(t_cap), TextTable::sci(conv),
               TextTable::sci(reap),
               TextTable::fixed(reap > 0 ? conv / reap : 0.0, 1) + "x"});
  }
  std::fputs(e.render().c_str(), stdout);
  return 0;
}

// Table I reproduction + the NVSim-side numbers (Sec. V-B).
//
// Prints the cache configuration table, then the circuit-model report for
// each cache: per-event energies, area breakdown with the 1-vs-k ECC
// decoder comparison (paper: REAP area overhead < 1%, single decoder
// ~0.1%), and the conventional-vs-REAP read-path timing (paper: REAP not
// slower).
#include <cstdio>
#include <string>

#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/ecc/secded.hpp"
#include "reap/mtj/mtj_params.hpp"
#include "reap/mtj/read_disturb.hpp"
#include "reap/nvsim/report.hpp"

using namespace reap;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string node = args.get_string("tech", "32nm");
  nvsim::TechNode tech = node == "45nm"   ? nvsim::tech_45nm()
                         : node == "22nm" ? nvsim::tech_22nm()
                                          : nvsim::tech_32nm();

  std::puts("=== Table I: Configuration of On-Chip Caches ===");
  common::TextTable t({"cache", "configuration"});
  t.add_row({"L1 I-cache",
             "32KB, 4-way set-associative, 64B block size, write-back, SRAM"});
  t.add_row({"L1 D-cache",
             "32KB, 4-way set-associative, 64B block size, write-back, SRAM"});
  t.add_row({"L2 cache",
             "1MB, 8-way set-associative, 64B block size, write-back, "
             "STT-MRAM"});
  std::fputs(t.render().c_str(), stdout);

  const auto mtj = mtj::paper_default();
  std::printf("\nMTJ operating point (%s): P_RD-cell = %.3e per read\n",
              mtj.name.c_str(), mtj::read_disturb_probability(mtj));

  ecc::SecDedCode line_code(512);
  std::printf("line protection: %s (t=1, detects 2)\n\n",
              line_code.name().c_str());

  // L2: the STT-MRAM cache the paper evaluates.
  nvsim::CacheGeometry l2;
  l2.capacity_bytes = 1 << 20;
  l2.ways = 8;
  l2.block_bytes = 64;
  l2.data_cell = nvsim::CellType::stt_mram;
  nvsim::CacheModel l2_model(l2, tech, line_code, &mtj);
  std::fputs(nvsim::render_report(l2_model, "L2 (STT-MRAM, shared)").c_str(),
             stdout);

  // L1D: SRAM, for completeness of the Table I system.
  nvsim::CacheGeometry l1;
  l1.capacity_bytes = 32 * 1024;
  l1.ways = 4;
  l1.block_bytes = 64;
  l1.data_cell = nvsim::CellType::sram;
  nvsim::CacheModel l1_model(l1, tech, line_code, nullptr);
  std::fputs(nvsim::render_report(l1_model, "L1 (SRAM, I and D)").c_str(),
             stdout);

  // Headline claims.
  const auto a1 = l2_model.area(1);
  const auto a8 = l2_model.area(8);
  const auto timing = l2_model.timing();
  std::printf(
      "\npaper claims vs model:\n"
      "  ECC decoder share of cache area: %.3f %% (paper: ~0.1%%)\n"
      "  REAP area overhead (8 vs 1 decoders): %.3f %% (paper: <1%%)\n"
      "  read path conventional: %.3f ns, REAP: %.3f ns (paper: REAP <= "
      "conventional)\n",
      100.0 * a1.ecc_decoders.value / a1.total.value,
      100.0 * (a8.total.value - a1.total.value) / a1.total.value,
      common::in_nanoseconds(timing.conventional_total),
      common::in_nanoseconds(timing.reap_total));
  return 0;
}

// Policy-space ablation: the full reliability / energy / performance
// triangle across all four read-path policies (Sec. IV discusses the two
// alternatives to REAP; Sec. II the restore-based related work).
//
// Expected shape: serial matches REAP's reliability but pays latency;
// restore matches it but pays enormous write energy (plus write-failure
// risk); REAP pays only the small decode-energy premium.
//
// Flags: --instructions=N --warmup=N --workloads=a,b,c
#include <cstdio>
#include <string>
#include <vector>

#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

namespace {
std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t instructions = args.get_u64("instructions", 1'500'000);
  const std::uint64_t warmup = args.get_u64("warmup", 150'000);
  std::vector<std::string> workloads = {"perlbench", "mcf", "h264ref"};
  if (args.has("workloads"))
    workloads = split_csv(args.get_string("workloads", ""));

  std::puts("=== Ablation: read-path policy space ===");
  for (const auto& name : workloads) {
    const auto profile = trace::spec2006_profile(name);
    if (!profile) {
      std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
      return 1;
    }
    std::printf("\n--- %s ---\n", name.c_str());
    TextTable t({"policy", "MTTF vs conv (x)", "energy vs conv (%)",
                 "IPC vs conv (%)", "L2 hit cycles", "max concealed"});

    core::ExperimentConfig cfg;
    cfg.workload = *profile;
    cfg.instructions = instructions;
    cfg.warmup_instructions = warmup;
    cfg.policy = core::PolicyKind::conventional_parallel;
    const auto base = core::run_experiment(cfg);

    for (const auto kind : core::all_policies()) {
      cfg.policy = kind;
      const auto r =
          kind == core::PolicyKind::conventional_parallel
              ? base
              : core::run_experiment(cfg);
      const double mttf_x = reliability::mttf_ratio(r.mttf, base.mttf);
      const double energy_pct = 100.0 * r.energy.dynamic_total_j() /
                                base.energy.dynamic_total_j();
      const double ipc_pct = 100.0 * r.ipc / base.ipc;
      t.add_row({core::to_string(kind), TextTable::fixed(mttf_x, 1),
                 TextTable::fixed(energy_pct, 1),
                 TextTable::fixed(ipc_pct, 1),
                 std::to_string(r.l2_hit_cycles),
                 std::to_string(r.max_concealed)});
    }
    std::fputs(t.render().c_str(), stdout);
  }
  return 0;
}

// Policy-space ablation: the full reliability / energy / performance
// triangle across all read-path policies (Sec. IV discusses the two
// alternatives to REAP; Sec. II the restore-based related work).
//
// Expected shape: serial matches REAP's reliability but pays latency;
// restore matches it but pays enormous write energy (plus write-failure
// risk); REAP pays only the small decode-energy premium.
//
// Driven by the campaign engine: one {workload x policy} grid, sharded
// across cores, aggregated against the conventional baseline.
//
// Flags: --instructions=N --warmup=N --workloads=a,b,c --threads=N
#include <cstdio>
#include <string>
#include <vector>

#include "reap/campaign/campaign.hpp"
#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

namespace {
std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);

  campaign::CampaignSpec spec;
  spec.name = "ablation-policies";
  spec.workloads = {"perlbench", "mcf", "h264ref"};
  if (args.has("workloads"))
    spec.workloads = split_csv(args.get_string("workloads", ""));
  spec.policies = core::all_policies();
  spec.base.instructions = args.get_u64("instructions", 1'500'000);
  spec.base.warmup_instructions = args.get_u64("warmup", 150'000);

  std::puts("=== Ablation: read-path policy space ===");

  std::vector<campaign::CampaignPoint> points;
  try {
    points = campaign::expand(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  campaign::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  campaign::ProgressReporter progress;
  opts.on_progress = [&progress](std::size_t d, std::size_t t) {
    progress(d, t);
  };
  const auto results = campaign::CampaignRunner(opts).run(points);

  // Per-workload tables, every policy normalized to conventional.
  for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi) {
    std::printf("\n--- %s ---\n", spec.workloads[wi].c_str());
    TextTable t({"policy", "MTTF vs conv (x)", "energy vs conv (%)",
                 "IPC vs conv (%)", "L2 hit cycles", "max concealed"});
    // The baseline (conventional) row first, by definition 1x/100%.
    const core::ExperimentResult* base = nullptr;
    for (const auto& pt : points)
      if (pt.workload_i == wi &&
          pt.config.policy == core::PolicyKind::conventional_parallel)
        base = &results[pt.index];
    if (!base) continue;

    for (const auto& pt : points) {
      if (pt.workload_i != wi) continue;
      const auto& r = results[pt.index];
      const double mttf_x = reliability::mttf_ratio(r.mttf, base->mttf);
      const double energy_pct = 100.0 * r.energy.dynamic_total_j() /
                                base->energy.dynamic_total_j();
      const double ipc_pct = 100.0 * r.ipc / base->ipc;
      t.add_row({core::to_string(pt.config.policy),
                 TextTable::fixed(mttf_x, 1), TextTable::fixed(energy_pct, 1),
                 TextTable::fixed(ipc_pct, 1),
                 std::to_string(r.l2_hit_cycles),
                 std::to_string(r.max_concealed)});
    }
    std::fputs(t.render().c_str(), stdout);
  }

  // Cross-workload summary from the aggregate layer.
  const auto agg = campaign::aggregate(
      spec, points, results, core::PolicyKind::conventional_parallel);
  if (agg) std::printf("\n%s", agg->render().c_str());
  return 0;
}

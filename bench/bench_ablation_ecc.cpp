// ECC-strength ablation: can a stronger code substitute for REAP?
//
// Runs the conventional cache with t = 1 (SEC-DED) and t = 2/3 (BCH), plus
// REAP with t = 1, on a few workloads. Also prints the storage/decoder cost
// each code pays. Expected shape: DEC narrows the gap but keeps the
// accumulation scaling (failure ~ N^(t+1) p^(t+1)), while REAP removes the
// N dependence entirely at far lower cost.
//
// Flags: --instructions=N --warmup=N --workloads=a,b,c
#include <cstdio>
#include <string>
#include <vector>

#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/ecc/ecc_cost.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t instructions = args.get_u64("instructions", 1'500'000);
  const std::uint64_t warmup = args.get_u64("warmup", 150'000);
  const std::string workload = args.get_string("workload", "h264ref");

  std::puts("=== Ablation: ECC strength vs REAP ===");

  // Code cost table first.
  TextTable costs({"code", "parity bits", "storage ovh", "decoder gates",
                   "decode energy (pJ)", "decode latency (ns)"});
  const auto gt = ecc::gate_tech_32nm();
  for (unsigned t = 1; t <= 3; ++t) {
    const auto code = core::make_line_code(512, t);
    const auto cost = ecc::estimate_decoder_cost(*code, gt);
    costs.add_row(
        {code->name(), std::to_string(code->parity_bits()),
         TextTable::fixed(100.0 * static_cast<double>(code->parity_bits()) /
                              512.0,
                          1) +
             " %",
         std::to_string(cost.gates),
         TextTable::fixed(common::in_picojoules(cost.energy_per_decode), 3),
         TextTable::fixed(common::in_nanoseconds(cost.latency), 3)});
  }
  std::fputs(costs.render().c_str(), stdout);

  const auto profile = trace::spec2006_profile(workload);
  if (!profile) {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }

  std::printf("\n--- workload: %s ---\n", workload.c_str());
  core::ExperimentConfig cfg;
  cfg.workload = *profile;
  cfg.instructions = instructions;
  cfg.warmup_instructions = warmup;
  cfg.policy = core::PolicyKind::conventional_parallel;
  cfg.ecc_t = 1;
  const auto base = core::run_experiment(cfg);

  TextTable t({"configuration", "fail-prob sum", "MTTF vs conv+SECDED (x)"});
  auto add = [&](const std::string& label, const core::ExperimentResult& r) {
    t.add_row({label, TextTable::sci(r.mttf.failure_prob_sum),
               TextTable::fixed(reliability::mttf_ratio(r.mttf, base.mttf),
                                1)});
  };
  add("conventional + SEC-DED (t=1)", base);
  for (unsigned tc = 2; tc <= 3; ++tc) {
    cfg.ecc_t = tc;
    cfg.policy = core::PolicyKind::conventional_parallel;
    add("conventional + BCH t=" + std::to_string(tc), core::run_experiment(cfg));
  }
  cfg.ecc_t = 1;
  cfg.policy = core::PolicyKind::reap;
  add("REAP + SEC-DED (t=1)", core::run_experiment(cfg));
  cfg.ecc_t = 2;
  add("REAP + BCH t=2", core::run_experiment(cfg));
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

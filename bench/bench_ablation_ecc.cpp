// ECC-strength ablation: can a stronger code substitute for REAP?
//
// Runs the conventional cache with t = 1 (SEC-DED) and t = 2/3 (BCH), plus
// REAP with t = 1/2, on one workload. Also prints the storage/decoder cost
// each code pays. Expected shape: DEC narrows the gap but keeps the
// accumulation scaling (failure ~ N^(t+1) p^(t+1)), while REAP removes the
// N dependence entirely at far lower cost.
//
// Driven by the campaign engine: one {policy x ecc_t} grid, sharded across
// cores; every row replayed the identical trace.
//
// Flags: --instructions=N --warmup=N --workload=name --threads=N
#include <cstdio>
#include <string>

#include "reap/campaign/campaign.hpp"
#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/ecc/ecc_cost.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string workload = args.get_string("workload", "h264ref");

  std::puts("=== Ablation: ECC strength vs REAP ===");

  // Code cost table first.
  TextTable costs({"code", "parity bits", "storage ovh", "decoder gates",
                   "decode energy (pJ)", "decode latency (ns)"});
  const auto gt = ecc::gate_tech_32nm();
  for (unsigned t = 1; t <= 3; ++t) {
    const auto code = core::make_line_code(512, t);
    const auto cost = ecc::estimate_decoder_cost(*code, gt);
    costs.add_row(
        {code->name(), std::to_string(code->parity_bits()),
         TextTable::fixed(100.0 * static_cast<double>(code->parity_bits()) /
                              512.0,
                          1) +
             " %",
         std::to_string(cost.gates),
         TextTable::fixed(common::in_picojoules(cost.energy_per_decode), 3),
         TextTable::fixed(common::in_nanoseconds(cost.latency), 3)});
  }
  std::fputs(costs.render().c_str(), stdout);

  // Two campaigns sharing the campaign seed (so every point replays the
  // identical trace) rather than one {policy x ecc} cross product: REAP
  // only needs t = 1/2, and the grid would simulate-and-discard REAP+t=3.
  campaign::CampaignSpec conv;
  conv.name = "ablation-ecc-conventional";
  conv.workloads = {workload};
  conv.policies = {core::PolicyKind::conventional_parallel};
  conv.ecc_ts = {1, 2, 3};
  conv.base.instructions = args.get_u64("instructions", 1'500'000);
  conv.base.warmup_instructions = args.get_u64("warmup", 150'000);

  campaign::CampaignSpec reap = conv;
  reap.name = "ablation-ecc-reap";
  reap.policies = {core::PolicyKind::reap};
  reap.ecc_ts = {1, 2};

  campaign::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  campaign::CampaignRunner runner(opts);

  std::vector<campaign::CampaignPoint> conv_points, reap_points;
  try {
    conv_points = campaign::expand(conv);
    reap_points = campaign::expand(reap);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const auto conv_results = runner.run(conv_points);
  const auto reap_results = runner.run(reap_points);

  std::printf("\n--- workload: %s ---\n", workload.c_str());

  const auto& base = conv_results[0];  // conventional + SEC-DED (t=1)

  TextTable t({"configuration", "fail-prob sum", "MTTF vs conv+SECDED (x)"});
  auto add = [&](const std::string& label, const core::ExperimentResult& r) {
    t.add_row({label, TextTable::sci(r.mttf.failure_prob_sum),
               TextTable::fixed(reliability::mttf_ratio(r.mttf, base.mttf),
                                1)});
  };
  for (const auto& pt : conv_points) {
    const unsigned tc = conv.ecc_ts[pt.ecc_i];
    add(tc == 1 ? "conventional + SEC-DED (t=1)"
                : "conventional + BCH t=" + std::to_string(tc),
        conv_results[pt.index]);
  }
  for (const auto& pt : reap_points) {
    const unsigned tc = reap.ecc_ts[pt.ecc_i];
    add(tc == 1 ? "REAP + SEC-DED (t=1)"
                : "REAP + BCH t=" + std::to_string(tc),
        reap_results[pt.index]);
  }
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

// End-to-end experiment throughput (google-benchmark): instructions/sec of
// run_experiment per read-path policy on the paper's default Table I
// configuration, for both dispatch paths:
//
//   E2E/simd/<policy>     -- the production engine: batched trace pulls,
//                            policy statically dispatched and inlined into
//                            the cache access path, vectorized drive loop
//                            (batch pre-decode + prefetch + SIMD set
//                            scans) (run_experiment)
//   E2E/static/<policy>   -- the same engine on the plain batched loop,
//                            no pre-decode/prefetch/SIMD
//                            (run_experiment_basic)
//   E2E/replay/<policy>   -- the production engine fed from a
//                            materialized trace (run_experiment_replay
//                            over a pre-built arena): the steady-state
//                            cost of a campaign grid point whose
//                            trace-cache lookup hits, i.e. every point of
//                            a paired group after the first. replay/static
//                            isolates the RNG generation share of the hot
//                            path
//   E2E/virtual/<policy>  -- the runtime-dispatch reference loop: per-op
//                            virtual TraceSource::next + virtual
//                            L2PolicyHooks (run_experiment_virtual)
//
// The simd/static and static/virtual ratios isolate the vectorization and
// dispatch + batching wins inside one binary (bench_diff.py --gate holds
// the floors in CI); comparing BENCH_e2e.json files across commits (tools/
// bench_diff.py) tracks the full perf trajectory, including substrate
// changes both paths share. items_per_second is simulated instructions per
// wall second — the number ROADMAP's "SPEC-length windows become routine"
// goal moves on.
//
// Emit the JSON artifact with:
//   bench_e2e --benchmark_out=BENCH_e2e.json --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include "reap/core/experiment.hpp"
#include "reap/trace/replay.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;

namespace {

// Default Table I hierarchy/device config; perlbench is the bundled
// workload with the paper's qualitative "average case" mix (hot-set reuse
// + streams + pointer-ish noise).
core::ExperimentConfig bench_cfg(core::PolicyKind policy) {
  core::ExperimentConfig cfg;
  cfg.workload = *trace::spec2006_profile("perlbench");
  cfg.policy = policy;
  cfg.instructions = 400'000;
  cfg.warmup_instructions = 50'000;
  return cfg;
}

void run_e2e(benchmark::State& state,
             core::ExperimentResult (*run)(const core::ExperimentConfig&),
             core::PolicyKind policy) {
  const auto cfg = bench_cfg(policy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(cfg));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * cfg.instructions));
}

// Replay steady state: the arena is materialized once outside the timed
// region (amortized to ~zero across a paired group in a real campaign)
// and every iteration replays it, exactly as a campaign point with a
// trace-cache hit does.
void run_e2e_replay(benchmark::State& state, core::PolicyKind policy) {
  const auto cfg = bench_cfg(policy);
  trace::WorkloadTraceSource gen(cfg.workload);
  const auto trace = trace::MaterializedTrace::materialize(
      gen, cfg.warmup_instructions + cfg.instructions);
  for (auto _ : state) {
    trace::ReplayTraceSource source(trace);
    benchmark::DoNotOptimize(core::run_experiment_replay(cfg, source));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * cfg.instructions));
}

void register_all() {
  for (const core::PolicyKind policy : core::all_policies()) {
    benchmark::RegisterBenchmark(
        ("E2E/simd/" + core::to_string(policy)).c_str(),
        [policy](benchmark::State& s) {
          run_e2e(s, core::run_experiment, policy);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E2E/static/" + core::to_string(policy)).c_str(),
        [policy](benchmark::State& s) {
          run_e2e(s, core::run_experiment_basic, policy);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E2E/replay/" + core::to_string(policy)).c_str(),
        [policy](benchmark::State& s) { run_e2e_replay(s, policy); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E2E/virtual/" + core::to_string(policy)).c_str(),
        [policy](benchmark::State& s) {
          run_e2e(s, core::run_experiment_virtual, policy);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

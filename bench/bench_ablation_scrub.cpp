// Scrub-period ablation (extension): piggyback scrubbing interpolates
// between the conventional cache (scrub_every -> inf) and REAP
// (scrub_every = 1, every access checks every way). Sweeps the period and
// reports the reliability/energy frontier, showing that only the REAP
// endpoint removes accumulation completely while partial scrubbing buys
// diminishing protection per decode.
//
// Driven by the campaign engine: one campaign sweeps the scrub_everys
// design axis, a second supplies the conventional/REAP reference points.
// Both campaigns share the campaign seed and environment axes, so every
// row replayed the identical trace (paired comparison).
//
// Flags: --instructions=N --warmup=N --workload=name --threads=N
#include <cstdio>

#include "reap/campaign/campaign.hpp"
#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string workload = args.get_string("workload", "h264ref");
  if (!trace::spec2006_profile(workload)) {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }

  campaign::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  campaign::CampaignRunner runner(opts);

  campaign::CampaignSpec refs;
  refs.name = "ablation-scrub-refs";
  refs.workloads = {workload};
  refs.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap};
  refs.base.instructions = args.get_u64("instructions", 1'000'000);
  refs.base.warmup_instructions = args.get_u64("warmup", 100'000);

  campaign::CampaignSpec sweep = refs;
  sweep.name = "ablation-scrub-sweep";
  sweep.policies = {core::PolicyKind::scrub_piggyback};
  sweep.scrub_everys = {256, 64, 16, 4, 1};

  std::puts("=== Ablation: piggyback scrub period (extension) ===");
  std::printf("workload: %s\n", workload.c_str());

  const auto ref_points = campaign::expand(refs);
  const auto ref_results = runner.run(ref_points);
  const auto sweep_points = campaign::expand(sweep);
  const auto sweep_results = runner.run(sweep_points);

  const auto& base = ref_results[0];  // conventional (policy order above)
  const auto& reap_r = ref_results[1];

  TextTable t({"configuration", "MTTF vs conv (x)", "energy vs conv (%)",
               "ECC decodes"});
  auto add = [&](const std::string& label, const core::ExperimentResult& r) {
    t.add_row({label,
               TextTable::fixed(reliability::mttf_ratio(r.mttf, base.mttf), 1),
               TextTable::fixed(100.0 * r.energy.dynamic_total_j() /
                                    base.energy.dynamic_total_j(),
                                2),
               std::to_string(r.events.ecc_decodes)});
  };
  add("conventional", base);
  for (const auto& pt : sweep_points) {
    add("scrub every " + std::to_string(sweep.scrub_everys[pt.scrub_i]),
        sweep_results[pt.index]);
  }
  add("reap", reap_r);
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

// Scrub-period ablation (extension): piggyback scrubbing interpolates
// between the conventional cache (scrub_every -> inf) and REAP
// (scrub_every = 1, every access checks every way). Sweeps the period and
// reports the reliability/energy frontier, showing that only the REAP
// endpoint removes accumulation completely while partial scrubbing buys
// diminishing protection per decode.
//
// Flags: --instructions=N --warmup=N --workload=name
#include <cstdio>

#include "reap/common/cli.hpp"
#include "reap/common/table.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;
using common::TextTable;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t instructions = args.get_u64("instructions", 1'000'000);
  const std::uint64_t warmup = args.get_u64("warmup", 100'000);
  const std::string workload = args.get_string("workload", "h264ref");

  const auto profile = trace::spec2006_profile(workload);
  if (!profile) {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }

  std::puts("=== Ablation: piggyback scrub period (extension) ===");
  std::printf("workload: %s\n", workload.c_str());

  core::ExperimentConfig cfg;
  cfg.workload = *profile;
  cfg.instructions = instructions;
  cfg.warmup_instructions = warmup;
  cfg.policy = core::PolicyKind::conventional_parallel;
  const auto base = core::run_experiment(cfg);

  TextTable t({"configuration", "MTTF vs conv (x)", "energy vs conv (%)",
               "ECC decodes"});
  auto add = [&](const std::string& label, const core::ExperimentResult& r) {
    t.add_row({label,
               TextTable::fixed(reliability::mttf_ratio(r.mttf, base.mttf), 1),
               TextTable::fixed(100.0 * r.energy.dynamic_total_j() /
                                    base.energy.dynamic_total_j(),
                                2),
               std::to_string(r.events.ecc_decodes)});
  };
  add("conventional", base);
  for (const std::uint64_t every : {256ull, 64ull, 16ull, 4ull, 1ull}) {
    cfg.policy = core::PolicyKind::scrub_piggyback;
    cfg.scrub_every = every;
    add("scrub every " + std::to_string(every), core::run_experiment(cfg));
  }
  cfg.policy = core::PolicyKind::reap;
  add("reap", core::run_experiment(cfg));
  std::fputs(t.render().c_str(), stdout);
  return 0;
}
